//! The paper's quantitative claims, as executable assertions.
//!
//! Each test pins one finding from the experiment index (DESIGN.md §4) at
//! quick scale, so `cargo test` alone demonstrates the reproduction.
//! EXPERIMENTS.md records the full-scale numbers.

use bfly_apps::gauss::{gauss_smp, gauss_us};
use bfly_apps::hough::{hough, Discipline};
use bfly_machine::{Costs, Machine, MachineConfig};
use bfly_sim::Sim;

/// §2.1: a remote reference takes ~4 µs, five times as long as local.
#[test]
fn claim_remote_is_5x_local() {
    let c = Costs::butterfly_one();
    assert_eq!(c.remote_word(4), 5 * c.local_word());
}

/// §2.1/§4.1: busy-waiting on a remote location steals memory cycles —
/// degradation far beyond the nominal factor of five.
#[test]
fn claim_cycle_stealing_exceeds_nominal_ratio() {
    fn victim_time(spinners: u16) -> u64 {
        let sim = Sim::new();
        let m = Machine::new(&sim, MachineConfig::small(64));
        let word = m.node(0).alloc(4).unwrap();
        let local = m.node(0).alloc(4).unwrap();
        let done = std::rc::Rc::new(std::cell::Cell::new(false));
        for s in 1..=spinners {
            let m = m.clone();
            let done = done.clone();
            sim.spawn(async move {
                while !done.get() {
                    m.test_and_set(s, word).await;
                }
            });
        }
        let m2 = m.clone();
        let d2 = done.clone();
        let mut h = sim.spawn(async move {
            let t0 = m2.sim.now();
            for _ in 0..200 {
                m2.read_u32(0, local).await;
            }
            d2.set(true);
            m2.sim.now() - t0
        });
        sim.run();
        h.try_take().unwrap()
    }
    let alone = victim_time(0);
    let besieged = victim_time(48);
    assert!(
        besieged > alone * 5,
        "degradation must exceed the nominal 5x ratio: {alone} -> {besieged}"
    );
}

/// Figure 5 shape at reduced scale: with a small matrix the communication
/// term dominates earlier, so message passing must lose its advantage as P
/// grows (the crossover scales roughly with N; at N=192 it sits near 64 —
/// see EXPERIMENTS.md).
#[test]
fn claim_fig5_smp_degrades_with_p_while_us_flattens() {
    let n = 64;
    let all: Vec<u16> = (0..128).collect();
    let smp32 = gauss_smp(32, n, 7);
    let smp128 = gauss_smp(128, n, 7);
    assert!(
        smp128.time_ns > smp32.time_ns,
        "SMP must degrade 32->128 procs at this scale ({} -> {})",
        smp32.time_ns,
        smp128.time_ns
    );
    let us64 = gauss_us(64, n, all.clone(), 7);
    let us128 = gauss_us(128, n, all, 7);
    let ratio = us128.time_ns as f64 / us64.time_ns as f64;
    assert!(
        (0.6..1.4).contains(&ratio),
        "US must stay roughly flat 64->128 (ratio {ratio:.2})"
    );
    // Communication accounting matches the paper's formulas.
    assert_eq!(smp32.comm_ops, 64 * 31, "SMP messages = N*(P-1)");
}

/// §4.1: block-copying shared data into local memory and local trig tables
/// each improve the Hough transform substantially.
#[test]
fn claim_hough_locality_ordering() {
    let a = hough(16, 64, 12, Discipline::Naive, 3);
    let b = hough(16, 64, 12, Discipline::BlockCopy, 3);
    let c = hough(16, 64, 12, Discipline::BlockCopyTables, 3);
    assert_eq!(a.peak, b.peak);
    assert_eq!(b.peak, c.peak);
    assert!(
        b.time_ns as f64 <= a.time_ns as f64 * 0.92,
        "block copy >= 8%"
    );
    assert!(
        c.time_ns as f64 <= b.time_ns as f64 * 0.92,
        "tables >= 8% more"
    );
}

/// §4.1: spreading data over all memories beats packing it onto a few,
/// markedly so once a large fraction of processors are computing.
#[test]
fn claim_scatter_beats_packed() {
    let packed: Vec<u16> = (0..2).collect();
    let spread: Vec<u16> = (0..128).collect();
    let tp = gauss_us(48, 48, packed, 5);
    let ts = gauss_us(48, 48, spread, 5);
    assert!(
        tp.time_ns as f64 > ts.time_ns as f64 * 1.15,
        "spreading must win by >15% at this scale ({} vs {})",
        tp.time_ns,
        ts.time_ns
    );
}

/// §3.4: Bridge gives (near-)linear speedup as disks are added.
#[test]
fn claim_bridge_scales_linearly() {
    use bfly_bridge::util::{copy_parallel, fill_random};
    use bfly_bridge::{BridgeFs, DiskParams};
    use bfly_chrysalis::Os;
    use std::rc::Rc;

    fn throughput(disks: usize) -> f64 {
        let sim = Sim::new();
        let m = Machine::new(&sim, MachineConfig::small(64));
        let os = Os::boot(&m);
        let fs = BridgeFs::mount(&os, disks, DiskParams::default());
        let nblocks = 6 * disks as u64;
        let src = fs.create(nblocks);
        let dst = fs.create(nblocks);
        fill_random(&fs, &src, 1);
        let fs2 = fs.clone();
        let (s, d) = (src.clone(), dst.clone());
        os.boot_process(63, "client", move |p| async move {
            let p = Rc::new(p);
            copy_parallel(&fs2, &p, &s, &d).await;
            fs2.unmount();
        });
        sim.run();
        nblocks as f64 / (sim.now() as f64 / 1e9)
    }
    let t1 = throughput(1);
    let t8 = throughput(8);
    assert!(
        t8 > t1 * 6.0,
        "8 disks must give >6x the 1-disk throughput ({t1:.1} -> {t8:.1} blocks/s)"
    );
}

/// §3.3: Instant Replay's monitoring stays within a few percent and
/// replaying reproduces the recorded execution.
#[test]
fn claim_replay_cheap_and_faithful() {
    use bfly_apps::sort::merge_sort_replay;
    use bfly_replay::{Mode, ReplaySystem};

    let (off, _) = merge_sort_replay(4, 256, 9, ReplaySystem::new(Mode::Off));
    let (rec, sys) = merge_sort_replay(4, 256, 9, ReplaySystem::new(Mode::Record));
    let overhead = rec.time_ns as f64 / off.time_ns as f64 - 1.0;
    assert!(
        overhead < 0.08,
        "monitoring overhead {overhead:.3} too high"
    );

    let replayed = ReplaySystem::for_replay(&sys.trace());
    let (rep, _) = merge_sort_replay(4, 256, 9, replayed);
    assert_eq!(rep.data, rec.data, "replay must reproduce the execution");
}

/// §4.2: every general communication mechanism costs far more than a bare
/// remote reference, and semantics cost money (Lynx > bare mailboxes).
#[test]
fn claim_model_costs_ordered() {
    use bfly_chrysalis::Os;
    use butterfly_core::rpc_compare::{remote_ref_baseline_ns, run_comparison};

    let sim = Sim::new();
    let m = Machine::new(&sim, MachineConfig::small(8));
    let os = Os::boot(&m);
    let rs = run_comparison(&os, 0, 1, 64);
    let base = remote_ref_baseline_ns(&os) as f64;
    let by: std::collections::HashMap<_, _> = rs.iter().map(|r| (r.name, r.mean_ns)).collect();
    for r in &rs {
        assert!(r.mean_ns > 3.0 * base, "{} too cheap", r.name);
    }
    assert!(by["lynx"] > by["shm_event"]);
    assert!(by["mapped_fresh"] > by["shm_event"]);
}
