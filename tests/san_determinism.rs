//! The sanitizer observability contract, mirroring `probe_determinism.rs`:
//! `bfly-san` is *observational only*. Running a workload with an ambient
//! [`bfly_san::Sanitizer`] installed must produce bit-identical simulated
//! results — virtual end time, communication counts, solution accuracy,
//! and the full [`RunStats`](bfly_sim::exec::RunStats) fingerprint — as
//! the same workload with the sanitizer off.
//!
//! And the sanitizer's own *findings* must be deterministic: the seeded
//! witnesses of [`bfly_apps::witness`] are flagged with an identical race
//! fingerprint on every run.

use bfly_apps::gauss::{gauss_smp, gauss_smp_faulty, gauss_us, GaussResult};
use bfly_apps::witness::{dualq_racey, lock_order_cycle, pivot_racey};
use bfly_san::{install_ambient, Sanitizer};
use bfly_sim::{FaultKind, FaultPlan};
use proptest::prelude::*;

/// Everything the sanitizer must not perturb, extracted from one run.
#[derive(Debug, Clone, PartialEq)]
struct Fingerprint {
    time_ns: u64,
    comm_ops: u64,
    max_err_bits: u64,
    run: bfly_sim::exec::RunStats,
}

impl Fingerprint {
    fn of(r: GaussResult) -> Self {
        Fingerprint {
            time_ns: r.time_ns,
            comm_ops: r.comm_ops,
            // Bit pattern, not float compare: determinism means *identical*.
            max_err_bits: r.max_err.to_bits(),
            run: r.run,
        }
    }
}

/// Run `work` once with an ambient sanitizer installed and once without,
/// asserting the sanitizer actually saw traffic (the on-run was
/// instrumented, not silently unsanitized) and returning both fingerprints.
fn sanitized_vs_bare(work: impl Fn() -> GaussResult) -> (Fingerprint, Fingerprint) {
    let prev = install_ambient(Some(Sanitizer::new()));
    let on = Fingerprint::of(work());
    let san = install_ambient(prev).expect("sanitizer installed above");
    let (reads, writes, atomics, syncs) = san.traffic();
    assert!(
        reads + writes + atomics + syncs > 0,
        "ambient sanitizer recorded nothing — instrumentation lost"
    );
    assert!(
        san.is_clean(),
        "the application suite is race-clean; sanitizer says {}",
        san.verdict_line()
    );
    let off = Fingerprint::of(work());
    (on, off)
}

/// T15-style plan: degrade a couple of switch links, never lose messages
/// (loss would wedge the pivot broadcast — see `gauss_smp_faulty` docs).
fn degrade_plan(seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::new(seed);
    plan.push(
        0,
        FaultKind::LinkDegrade {
            stage: 3,
            port: (seed % 16) as u32,
            factor: 4,
        },
    );
    plan.push(
        50_000,
        FaultKind::LinkDegrade {
            stage: 3,
            port: ((seed + 5) % 16) as u32,
            factor: 8,
        },
    );
    plan
}

#[test]
fn fig5_us_point_is_sanitizer_invariant() {
    let all: Vec<u16> = (0..128).collect();
    let (on, off) = sanitized_vs_bare(|| gauss_us(16, 24, all.clone(), 11));
    assert_eq!(on, off, "sanitizer changed the Uniform System FIG5 point");
}

#[test]
fn fig5_smp_point_is_sanitizer_invariant() {
    let (on, off) = sanitized_vs_bare(|| gauss_smp(16, 24, 11));
    assert_eq!(on, off, "sanitizer changed the SMP FIG5 point");
}

#[test]
fn t15_faulty_point_is_sanitizer_invariant() {
    let plan = degrade_plan(11);
    let (on, off) = sanitized_vs_bare(|| gauss_smp_faulty(16, 24, 11, &plan));
    assert_eq!(on, off, "sanitizer changed the degraded-link T15 point");
}

/// Run the full buggy-witness suite under a fresh sanitizer and return the
/// stable findings fingerprint.
fn witness_findings() -> (Vec<String>, String) {
    let prev = install_ambient(Some(Sanitizer::new()));
    dualq_racey(20);
    pivot_racey(16);
    lock_order_cycle();
    let san = install_ambient(prev).expect("sanitizer installed above");
    (san.race_fingerprint(), san.verdict_line())
}

#[test]
fn witness_findings_are_deterministic() {
    let (fp1, verdict1) = witness_findings();
    assert!(
        !fp1.is_empty(),
        "witness suite must produce findings: {verdict1}"
    );
    for _ in 0..2 {
        let (fp, verdict) = witness_findings();
        assert_eq!(fp, fp1, "race fingerprint drifted between runs");
        assert_eq!(verdict, verdict1, "verdict drifted between runs");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any seed, both models, with and without faults: sanitizer on vs off
    /// must fingerprint identically.
    #[test]
    fn sanitizer_never_perturbs_results(seed in 0u64..1_000) {
        let all: Vec<u16> = (0..128).collect();
        let (on, off) = sanitized_vs_bare(|| gauss_us(8, 16, all.clone(), seed));
        prop_assert_eq!(on, off);

        let plan = degrade_plan(seed);
        let (on, off) = sanitized_vs_bare(|| gauss_smp_faulty(8, 16, seed, &plan));
        prop_assert_eq!(on, off);
    }
}
