//! The snapshot/restore contract (DESIGN.md §16): for any cut point k,
//! `run(k) → snapshot → rebuild → fast-forward(k) → run(rest)` must be
//! bit-identical to the uninterrupted run — virtual end time,
//! communication counts, solution accuracy bits, and the full
//! [`RunStats`](bfly_sim::exec::RunStats) fingerprint — and the restore
//! must *prove* it reached the captured state (every section of the
//! rebuilt snapshot byte-equal to the original, via
//! [`verify_prefix`](bfly_sim::snap::verify_prefix)).
//!
//! Covered workloads: a FIG5 point in both programming models (Uniform
//! System and SMP message passing) and a T15 point (SMP under link
//! degradation), each bare, probed (`--probe`), and sanitized
//! (`--sanitize`) — instrumentation sections ride inside the snapshot
//! and must survive the round trip too. A golden schema test pins the
//! `bfly-snap/1` container format so a silent format change cannot ship
//! as a refactor.

use bfly_apps::gauss::{prepare_gauss_smp_faulty, prepare_gauss_us, GaussResult, PreparedGauss};
use bfly_probe::Probe;
use bfly_san::Sanitizer;
use bfly_sim::snap::{run_to_cut, verify_prefix};
use bfly_sim::{FaultKind, FaultPlan};
use bfly_snap::{Snap, FORMAT, SUM_MARKER};
use proptest::prelude::*;

/// Everything a resume must reproduce, extracted from one run.
#[derive(Debug, Clone, PartialEq)]
struct Fingerprint {
    time_ns: u64,
    comm_ops: u64,
    max_err_bits: u64,
    run: bfly_sim::exec::RunStats,
}

impl Fingerprint {
    fn of(r: GaussResult) -> Self {
        Fingerprint {
            time_ns: r.time_ns,
            comm_ops: r.comm_ops,
            // Bit pattern, not float compare: determinism means *identical*.
            max_err_bits: r.max_err.to_bits(),
            run: r.run,
        }
    }
}

/// Which ambient instrumentation a leg runs under. Each leg installs a
/// *fresh* instance: instrumentation counters are cumulative over the
/// instance's lifetime, so the snapshot's `probe`/`san` sections only
/// compare equal if the straight, cut, and restore legs each start
/// their instrumentation from zero.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Instr {
    Bare,
    Probed,
    Sanitized,
}

fn with_instr<T>(instr: Instr, f: impl FnOnce() -> T) -> T {
    match instr {
        Instr::Bare => f(),
        Instr::Probed => {
            let prev = bfly_probe::install_ambient(Some(Probe::new()));
            let out = f();
            bfly_probe::install_ambient(prev);
            out
        }
        Instr::Sanitized => {
            let prev = bfly_san::install_ambient(Some(Sanitizer::new()));
            let out = f();
            bfly_san::install_ambient(prev);
            out
        }
    }
}

/// T15-style plan: degrade a couple of switch links, never lose messages
/// (loss would wedge the pivot broadcast — see `gauss_smp_faulty` docs).
fn degrade_plan(seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::new(seed);
    plan.push(
        0,
        FaultKind::LinkDegrade {
            stage: 3,
            port: (seed % 16) as u32,
            factor: 4,
        },
    );
    plan.push(
        50_000,
        FaultKind::LinkDegrade {
            stage: 3,
            port: ((seed + 5) % 16) as u32,
            factor: 8,
        },
    );
    plan
}

/// The property core. `mk` rebuilds the same deterministic program from
/// scratch (same arguments, same seed — the restore contract's "re-run
/// the setup code"). Three legs, each under its own fresh
/// instrumentation:
///
/// 1. straight — the uninterrupted reference run;
/// 2. cut — run to `cut` events, snapshot, keep only the bytes;
/// 3. restore — decode, rebuild via `mk`, fast-forward to the
///    snapshot's event count, **prove** every section matches
///    (`verify_prefix`), then finish.
///
/// Returns (straight, restored) fingerprints; the caller asserts
/// equality so proptest failures print both.
fn snapshot_round_trip(
    mk: &dyn Fn() -> PreparedGauss,
    cut_frac_pct: u64,
    instr: Instr,
) -> (Fingerprint, Fingerprint) {
    let straight = with_instr(instr, || Fingerprint::of(mk().finish()));
    let cut = straight.run.events * cut_frac_pct / 100;

    let bytes = with_instr(instr, || {
        let prepared = mk();
        let _ = run_to_cut(&prepared.sim, cut);
        let snap = prepared.snapshot();
        match instr {
            Instr::Bare => {}
            Instr::Probed => assert!(
                snap.section("probe").is_some(),
                "probed snapshot lost its probe section"
            ),
            Instr::Sanitized => assert!(
                snap.section("san").is_some(),
                "sanitized snapshot lost its san section"
            ),
        }
        snap.encode()
    });

    let restored = with_instr(instr, || {
        let snap = Snap::decode(&bytes).expect("own snapshot bytes decode");
        let events = snap
            .require(bfly_sim::snap::ENGINE_SECTION)
            .and_then(|s| s.get_u64("events"))
            .expect("engine section carries the fast-forward target");
        let rebuilt = mk();
        let _ = run_to_cut(&rebuilt.sim, events);
        verify_prefix(&snap, &rebuilt.snapshot()).expect("restore proof: replayed state matches");
        Fingerprint::of(rebuilt.finish())
    });
    (straight, restored)
}

fn fig5_us(seed: u64) -> PreparedGauss {
    let all: Vec<u16> = (0..128).collect();
    prepare_gauss_us(8, 16, all, seed)
}

fn t15_smp(seed: u64) -> PreparedGauss {
    prepare_gauss_smp_faulty(8, 16, seed, &degrade_plan(seed))
}

#[test]
fn fig5_us_round_trip_probed() {
    let (straight, restored) = snapshot_round_trip(&|| fig5_us(11), 50, Instr::Probed);
    assert_eq!(straight, restored, "probed US resume diverged");
}

#[test]
fn t15_smp_round_trip_sanitized() {
    let (straight, restored) = snapshot_round_trip(&|| t15_smp(11), 50, Instr::Sanitized);
    assert_eq!(straight, restored, "sanitized T15 resume diverged");
}

#[test]
fn edge_cuts_round_trip() {
    // cut = 0 (restore replays nothing) and cut = 100 % (the snapshot
    // *is* the quiescent state; finish processes zero further events).
    for pct in [0, 100] {
        let (straight, restored) = snapshot_round_trip(&|| fig5_us(7), pct, Instr::Bare);
        assert_eq!(straight, restored, "cut at {pct}% diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any seed, any cut point, both models, rotating instrumentation:
    /// a snapshot-resumed run must fingerprint identically to an
    /// uninterrupted one.
    #[test]
    fn snapshot_resume_is_bit_identical(seed in 0u64..1_000, cut_pct in 0u64..=100) {
        let instr = match seed % 3 {
            0 => Instr::Bare,
            1 => Instr::Probed,
            _ => Instr::Sanitized,
        };
        let (straight, restored) =
            snapshot_round_trip(&|| fig5_us(seed), cut_pct, instr);
        prop_assert_eq!(straight, restored, "US diverged (instr {:?})", instr);

        let (straight, restored) =
            snapshot_round_trip(&|| t15_smp(seed), cut_pct, instr);
        prop_assert_eq!(straight, restored, "T15 diverged (instr {:?})", instr);
    }
}

// ---------------------------------------------------------------------
// Golden schema: the container format is a compatibility surface.

/// Pin the `bfly-snap/1` wire schema. If this test fails, the snapshot
/// format changed: bump the format/engine version and state the
/// migration story rather than editing the assertions.
#[test]
fn golden_snapshot_schema() {
    let prepared = fig5_us(42);
    let _ = run_to_cut(&prepared.sim, 1_000);
    let bytes = prepared.snapshot().encode();
    let text = std::str::from_utf8(&bytes).expect("snapshots are UTF-8");

    // Header: the literal version line (pinned, not via the constant —
    // the constant changing IS the regression under test).
    let mut lines = text.lines();
    assert_eq!(lines.next(), Some("bfly-snap/1"));
    assert_eq!(FORMAT, "bfly-snap/1");

    // Section order is fixed: engine metadata, scheduler state, then
    // the layers in dependency order.
    let names: Vec<&str> = text.lines().filter(|l| l.starts_with('[')).collect();
    assert_eq!(names, ["[engine]", "[sim]", "[machine]", "[us]"]);

    // The engine section carries exactly the restore contract: format
    // owner version and the fast-forward event target.
    let snap = Snap::decode(&bytes).expect("round trip");
    let engine = snap.require("engine").expect("engine section");
    assert_eq!(
        engine.get_u64("version").expect("version field"),
        bfly_sim::ENGINE_VERSION as u64
    );
    assert_eq!(engine.get_u64("events").expect("events field"), 1_000);

    // Trailer: a 32-hex content sum over everything above it, equal to
    // the decoded snapshot's own hash.
    let last = text.lines().last().expect("nonempty");
    let sum = last.strip_prefix(SUM_MARKER).expect("#sum trailer");
    assert_eq!(sum.len(), 32);
    assert!(sum.bytes().all(|b| b.is_ascii_hexdigit()));
    assert_eq!(sum, snap.hash());

    // The sum is load-bearing: one flipped state byte must be rejected.
    let mut bad = bytes.clone();
    let pos = text.find("now=").expect("sim clock field") + "now=".len();
    bad[pos] = if bad[pos] == b'9' { b'8' } else { b'9' };
    assert!(
        Snap::decode(&bad).is_err(),
        "tampered snapshot must fail its content sum"
    );
}
