//! The probe observability contract: probes are *observational only*.
//! Running a workload with an ambient [`bfly_probe::Probe`] installed must
//! produce bit-identical simulated results — virtual end time,
//! communication counts, solution accuracy, and the full
//! [`RunStats`](bfly_sim::exec::RunStats) fingerprint (whose `PartialEq`
//! already ignores host wall time) — as the same workload with probes off.
//!
//! Covered workloads: a FIG5 point in both programming models (Uniform
//! System and SMP message passing) and a T15 point (SMP under link
//! degradation), plus a property sweep over seeds.

use bfly_apps::gauss::{gauss_smp, gauss_smp_faulty, gauss_us, GaussResult};
use bfly_probe::{install_ambient, Probe};
use bfly_sim::{FaultKind, FaultPlan};
use proptest::prelude::*;

/// Everything a probe must not perturb, extracted from one run.
#[derive(Debug, Clone, PartialEq)]
struct Fingerprint {
    time_ns: u64,
    comm_ops: u64,
    max_err_bits: u64,
    run: bfly_sim::exec::RunStats,
}

impl Fingerprint {
    fn of(r: GaussResult) -> Self {
        Fingerprint {
            time_ns: r.time_ns,
            comm_ops: r.comm_ops,
            // Bit pattern, not float compare: determinism means *identical*.
            max_err_bits: r.max_err.to_bits(),
            run: r.run,
        }
    }
}

/// Run `work` once with an ambient probe installed and once without,
/// asserting the probe actually saw traffic (the on-run was instrumented,
/// not silently unprobed) and returning both fingerprints.
fn probed_vs_bare(work: impl Fn() -> GaussResult) -> (Fingerprint, Fingerprint) {
    let probe = Probe::new();
    let prev = install_ambient(Some(probe.clone()));
    let on = Fingerprint::of(work());
    install_ambient(prev);
    let seen = probe.timeline().spans().len() as u64
        + (0..8u16)
            .map(|n| probe.node(n).local_refs.get() + probe.node(n).remote_out.get())
            .sum::<u64>();
    assert!(
        seen > 0,
        "ambient probe recorded nothing — instrumentation lost"
    );
    let off = Fingerprint::of(work());
    (on, off)
}

/// T15-style plan: degrade a couple of switch links, never lose messages
/// (loss would wedge the pivot broadcast — see `gauss_smp_faulty` docs).
fn degrade_plan(seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::new(seed);
    plan.push(
        0,
        FaultKind::LinkDegrade {
            stage: 3,
            port: (seed % 16) as u32,
            factor: 4,
        },
    );
    plan.push(
        50_000,
        FaultKind::LinkDegrade {
            stage: 3,
            port: ((seed + 5) % 16) as u32,
            factor: 8,
        },
    );
    plan
}

#[test]
fn fig5_us_point_is_probe_invariant() {
    let all: Vec<u16> = (0..128).collect();
    let (on, off) = probed_vs_bare(|| gauss_us(16, 24, all.clone(), 11));
    assert_eq!(on, off, "probes changed the Uniform System FIG5 point");
}

#[test]
fn fig5_smp_point_is_probe_invariant() {
    let (on, off) = probed_vs_bare(|| gauss_smp(16, 24, 11));
    assert_eq!(on, off, "probes changed the SMP FIG5 point");
}

#[test]
fn t15_faulty_point_is_probe_invariant() {
    let plan = degrade_plan(11);
    let (on, off) = probed_vs_bare(|| gauss_smp_faulty(16, 24, 11, &plan));
    assert_eq!(on, off, "probes changed the degraded-link T15 point");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any seed, both models, with and without faults: probes on vs off
    /// must fingerprint identically.
    #[test]
    fn probes_never_perturb_results(seed in 0u64..1_000) {
        let all: Vec<u16> = (0..128).collect();
        let (on, off) = probed_vs_bare(|| gauss_us(8, 16, all.clone(), seed));
        prop_assert_eq!(on, off);

        let plan = degrade_plan(seed);
        let (on, off) = probed_vs_bare(|| gauss_smp_faulty(8, 16, seed, &plan));
        prop_assert_eq!(on, off);
    }
}
