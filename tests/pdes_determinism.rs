//! The parallel-in-time determinism contract (DESIGN.md §17): for any
//! seed, any host worker count, and any window size `1..=lookahead`, the
//! windowed-parallel PDES executor must produce **bit-identical** results
//! to the serial one — final stats, per-node state digests, pending-event
//! sets, and the merged instrumentation log. And the two engines must be
//! interchangeable mid-run: a snapshot cut from a parallel execution
//! restores into a serial finish (and vice versa) with the same bits as
//! an uninterrupted run.
//!
//! Covered workloads: PHOLD (random cross-partition traffic — the
//! stress case for the window exchange) and the T22 PDES gauss (long
//! dependency chains through pivot broadcasts). Both are pure functions
//! of their seeds, so every divergence is an executor bug, never noise.

use bfly_apps::pdes_gauss::{pdes_gauss_extract, pdes_gauss_sim};
use bfly_apps::phold::phold_sim;
use bfly_sim::pdes::PdesSim;
use proptest::prelude::*;

/// Everything the contract pins, extracted from a finished simulation.
#[derive(Debug, Clone, PartialEq)]
struct Fingerprint {
    events: u64,
    end_time: u64,
    digest: u64,
    log: Vec<bfly_sim::pdes::LogRec>,
}

fn fingerprint(sim: &mut PdesSim, stats: bfly_sim::pdes::PdesStats) -> Fingerprint {
    Fingerprint {
        events: stats.events,
        end_time: stats.end_time,
        digest: sim.state_digest(),
        log: sim.drain_log(),
    }
}

fn run_serial(mut sim: PdesSim) -> Fingerprint {
    sim.record_log(true);
    let stats = sim.run();
    fingerprint(&mut sim, stats)
}

fn run_parallel(mut sim: PdesSim, hosts: usize, window: u64) -> Fingerprint {
    sim.record_log(true);
    let stats = if window == 0 {
        // Default window (= lookahead).
        sim.run_parallel(hosts)
    } else {
        sim.run_parallel_until(hosts, window, u64::MAX)
    };
    fingerprint(&mut sim, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// PHOLD: random seeds x worker counts x window sizes. Every event
    /// re-sends to an RNG-chosen node, so nearly every window crosses
    /// partitions; any ordering bug in the exchange shows up in the
    /// checksum digest immediately.
    #[test]
    fn phold_parallel_is_bit_identical(
        seed in 0u64..1_000,
        hosts_i in 0usize..4,
        window_i in 0usize..5,
    ) {
        let hosts = [2usize, 3, 4, 8][hosts_i];
        let window = [0u64, 1, 7, 500, 4_000][window_i];
        let serial = run_serial(phold_sim(seed, 48, 3, 30, 4_000));
        let par = run_parallel(phold_sim(seed, 48, 3, 30, 4_000), hosts, window);
        prop_assert_eq!(serial, par, "hosts={}, window={}", hosts, window);
    }

    /// PDES gauss: the same sweep point must solve to the same bits on
    /// any executor shape, including the full extracted result (virtual
    /// time, message counts, back-substituted solution error).
    #[test]
    fn gauss_parallel_is_bit_identical(
        seed in 0u64..1_000,
        hosts_i in 0usize..4,
    ) {
        let hosts = [2usize, 3, 4, 8][hosts_i];
        let mut a = pdes_gauss_sim(6, 20, seed, 64);
        a.run();
        let ra = pdes_gauss_extract(&a, 6, 20);
        let mut b = pdes_gauss_sim(6, 20, seed, 64);
        b.run_parallel(hosts);
        let rb = pdes_gauss_extract(&b, 6, 20);
        prop_assert_eq!(ra, rb, "hosts={}", hosts);
        prop_assert_eq!(a.state_digest(), b.state_digest());
    }

    /// Engine interchange: cut a parallel run mid-window, snapshot,
    /// restore, finish serially — and the mirror image (serial cut,
    /// parallel finish). Both must land on the uninterrupted run's bits.
    #[test]
    fn midrun_snapshots_swap_engines(
        seed in 0u64..1_000,
        hosts_i in 0usize..3,
        cut_frac in 1u64..4,
    ) {
        let hosts = [2usize, 3, 8][hosts_i];
        let straight = run_serial(phold_sim(seed, 32, 2, 25, 4_000));
        let cut = straight.end_time * cut_frac / 4;

        // Parallel prefix -> snapshot -> serial finish.
        let mut par = phold_sim(seed, 32, 2, 25, 4_000);
        par.record_log(true);
        par.run_parallel_until(hosts, 4_000, cut);
        let snap = par.snapshot();
        let mut resumed = PdesSim::restore(&snap, || {
            let mut s = phold_sim(seed, 32, 2, 25, 4_000);
            s.record_log(true);
            s
        }).expect("parallel-cut snapshot restores");
        // The restored prefix log lives in the donor; splice it back so
        // the merged log covers the whole run.
        // The restored engine carries the prefix event count; the prefix
        // *log* stayed in the donor sim, so splice the two halves before
        // comparing against the uninterrupted log.
        let stats = resumed.run();
        let mut fp = fingerprint(&mut resumed, stats);
        let mut full_log = par.drain_log();
        full_log.append(&mut fp.log);
        fp.log = full_log;
        prop_assert_eq!(&straight.digest, &fp.digest, "hosts={}", hosts);
        prop_assert_eq!(&straight.events, &fp.events);
        prop_assert_eq!(&straight.end_time, &fp.end_time);
        prop_assert_eq!(&straight.log, &fp.log);

        // Serial prefix -> snapshot -> parallel finish.
        let mut ser = phold_sim(seed, 32, 2, 25, 4_000);
        ser.run_until(cut);
        let snap = ser.snapshot();
        let mut resumed = PdesSim::restore(&snap, || phold_sim(seed, 32, 2, 25, 4_000))
            .expect("serial-cut snapshot restores");
        resumed.run_parallel(hosts);
        prop_assert_eq!(straight.digest, resumed.state_digest(), "hosts={}", hosts);
    }
}

/// The same-cut snapshot is engine-shape independent: pausing a serial
/// run at time `t` and pausing a parallel run at time `t` must serialize
/// to byte-identical snapshots (modulo nothing — the bytes are compared).
#[test]
fn same_cut_snapshots_are_byte_identical_across_engines() {
    for (hosts, window) in [(2usize, 4_000u64), (3, 1_000), (8, 1)] {
        let cut = 60_000;
        let mut ser = phold_sim(5, 24, 2, 20, 4_000);
        ser.run_until(cut);
        let mut par = phold_sim(5, 24, 2, 20, 4_000);
        par.run_parallel_until(hosts, window, cut);
        assert_eq!(
            ser.snapshot().encode(),
            par.snapshot().encode(),
            "hosts={hosts} window={window}"
        );
    }
}
