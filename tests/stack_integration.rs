//! Cross-crate integration: the whole Rochester stack coexisting on one
//! simulated machine — the §4.2 requirement that motivated Psyche:
//! "programs written under different models [must] coexist and interact".

use std::cell::Cell;
use std::rc::Rc;

use butterfly::prelude::*;

/// Uniform System tasks, an SMP family, Ant Farm threads, and a Linda
/// tuple space all running in ONE simulation, handing values to each
/// other through shared memory.
#[test]
fn all_models_coexist_and_interact() {
    let bf = Butterfly::boot(32);
    let machine = bf.machine.clone();

    // A shared cell every model writes through.
    let relay = machine.node(5).alloc(4).unwrap();
    machine.poke_u32(relay, 1);

    // 1. US doubles it.
    let us = Us::init(&bf.os, 4);
    let us2 = us.clone();
    let us_done = Rc::new(Cell::new(false));
    let ud = us_done.clone();
    bf.os.boot_process(0, "us-driver", move |_p| async move {
        us2.gen_on_n(
            1,
            task(move |p, _| async move {
                let v = p.read_u32(relay).await;
                p.write_u32(relay, v * 2).await;
            }),
        )
        .await;
        us2.shutdown();
        ud.set(true);
    });

    // 2. An Ant Farm thread waits for the US result via a tuple space,
    //    adds 5, and posts for SMP.
    let ts = TupleSpace::new(&bf.os, 16);
    let af = AntFarm::new(&bf.os);
    {
        let ts = ts.clone();
        let us_done = us_done.clone();
        af.spawn(9, move |ant| async move {
            // Wait (blocking politely) for the US phase.
            while !us_done.get() {
                ant.proc.compute(100_000).await;
            }
            let v = ant.proc.read_u32(relay).await;
            ts.out(&ant.proc, 42, &(v + 5).to_le_bytes()).await;
        });
    }

    // 3. An SMP family: rank 0 takes the tuple, passes it along a line,
    //    the tail writes it back to shared memory.
    let ts2 = ts.clone();
    Family::spawn(&bf.os, 3, Topology::Line, move |m| {
        let ts = ts2.clone();
        async move {
            if m.rank == 0 {
                let v = ts.in_(&m.proc, 42).await;
                m.send(1, &v).await.unwrap();
            } else if m.rank == 1 {
                let d = m.recv_from(0).await;
                m.send(2, &d).await.unwrap();
            } else {
                let d = m.recv_from(1).await;
                let v = u32::from_le_bytes(d.try_into().unwrap());
                m.proc.write_u32(relay, v + 100).await;
            }
        }
    });

    let stats = bf.sim.run();
    assert_eq!(
        stats.outcome,
        bfly_sim::exec::RunOutcome::Completed,
        "the mixed-model program must terminate"
    );
    // 1 * 2 + 5 + 100 = 107.
    assert_eq!(machine.peek_u32(relay), 107);
}

/// Chrysalis object reclamation works across the layers: deleting a
/// process reclaims everything it created from every package's usage.
#[test]
fn object_reclamation_spans_layers() {
    let bf = Butterfly::boot(8);
    let os = bf.os.clone();
    let before: u32 = (0..8).map(|n| bf.machine.node(n).allocated_bytes()).sum();
    let os2 = os.clone();
    bf.os.boot_process(0, "owner", move |p| async move {
        let a = p.make_local_obj(2048).await.unwrap();
        let b = p.make_obj(3, 4096).await.unwrap();
        p.write_u32(a.addr, 1).await;
        p.write_u32(b.addr, 2).await;
        os2.delete_obj(p.id);
    });
    bf.sim.run();
    let after: u32 = (0..8).map(|n| bf.machine.node(n).allocated_bytes()).sum();
    assert_eq!(
        before, after,
        "deleting the process must reclaim its objects"
    );
}

/// The leak hazard is real: system-owned objects survive their creator.
#[test]
fn give_to_system_leaks_as_documented() {
    let bf = Butterfly::boot(4);
    let os = bf.os.clone();
    let os2 = os.clone();
    bf.os.boot_process(0, "leaker", move |p| async move {
        let obj = p.make_local_obj(1024).await.unwrap();
        os2.give_to_system(obj.id);
        os2.delete_obj(p.id);
    });
    bf.sim.run();
    assert!(
        !os.leak_report().is_empty(),
        "Chrysalis tends to leak storage (§2.2) — and so do we, faithfully"
    );
}

/// Determinism across the stack: same seed = identical end time and
/// results, different seed (with jitter) = different interleaving.
#[test]
fn whole_stack_determinism() {
    fn run(seed: u64) -> (u64, Vec<u32>) {
        let mut costs = Costs::butterfly_one();
        costs.jitter_pct = 20;
        let bf = Butterfly::boot_config(MachineConfig::small(8).with_costs(costs), seed);
        let order = Rc::new(std::cell::RefCell::new(Vec::new()));
        for i in 0..6u16 {
            let order = order.clone();
            let machine = bf.machine.clone();
            bf.os
                .boot_process(i, &format!("p{i}"), move |p| async move {
                    let a = machine.node((i + 1) % 8).alloc(4).unwrap();
                    for _ in 0..4 {
                        p.read_u32(a).await;
                    }
                    order.borrow_mut().push(i as u32);
                });
        }
        bf.sim.run();
        let o = order.borrow().clone();
        (bf.sim.now(), o)
    }
    let a = run(1);
    let b = run(1);
    let c = run(2);
    assert_eq!(a, b, "same seed must reproduce exactly");
    assert_ne!(a, c, "different seeds must differ under jitter");
}
