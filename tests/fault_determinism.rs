//! Property tests for the fault-injection determinism contract: a run is a
//! pure function of (sim seed, fault plan). Same seed + same plan must
//! yield bit-identical outcomes — virtual end time, event/task counts,
//! machine traffic counters, SMP message accounting, and (when the faults
//! wedge the workload) the exact stuck-task census.

use std::rc::Rc;

use bfly_bridge::{BridgeFs, DiskParams};
use bfly_chrysalis::Os;
use bfly_machine::{Machine, MachineConfig};
use bfly_sim::{FaultKind, FaultPlan, FaultSpec, Sim, MS};
use bfly_smp::{Family, SmpCosts, Topology};
use proptest::prelude::*;

/// Everything observable about one run, for equality comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Fingerprint {
    outcome: String,
    end_time: u64,
    events: u64,
    tasks: u64,
    machine: (u64, u64, u64, u64, u64),
    msgs: (u64, u64, u64),
    disk_ops: u64,
    degraded_reads: u64,
}

/// A random plan whose node crashes are remapped onto nodes 4..8 — the
/// worker family lives on nodes 0..4, so crashes partition *peers of the
/// switch*, never the code under test itself (crashing a node that hosts a
/// running simulated process is a separate, panicking, error — covered by
/// unit tests of the panicking wrappers).
fn plan_for(seed: u64) -> FaultPlan {
    let spec = FaultSpec {
        horizon: 5 * MS,
        nodes: 8,
        stages: 2,
        ports: 16,
        disks: 2,
        node_crashes: 1,
        link_events: 3,
        disk_fails: 1,
    };
    let mut plan = FaultPlan::random(seed, &spec);
    for ev in &mut plan.events {
        match &mut ev.kind {
            FaultKind::NodeCrash { node } | FaultKind::NodeRecover { node } => {
                *node = 4 + (*node % 4);
            }
            _ => {}
        }
    }
    plan
}

/// One full stack run under `plan`: a 4-member SMP family rings messages
/// with bounded-backoff sends and timeouts, while a client copies blocks
/// through a 2-disk mirrored Bridge mount. Every fault outcome is
/// *handled* (errors ignored), so the run always quiesces.
fn run_stack(seed: u64, plan: &FaultPlan) -> Fingerprint {
    let sim = Sim::with_seed(seed);
    let machine = Machine::new(&sim, MachineConfig::small(8));
    machine.install_faults(plan);
    let os = Os::boot(&machine);

    let fs = BridgeFs::mount_mirrored(&os, 2, DiskParams::default());
    fs.install_faults(plan);
    let f = fs.create(4);
    let fs2 = fs.clone();
    os.boot_process(3, "bridge-client", move |p| async move {
        let p = Rc::new(p);
        for i in 0..4u64 {
            let _ = fs2.try_write_block(&p, &f, i, vec![i as u8; 32]).await;
        }
        for i in 0..4u64 {
            let _ = fs2.try_read_block(&p, &f, i).await;
        }
        fs2.unmount();
    });

    let fam = Family::spawn_placed(
        &os,
        4,
        Topology::Complete,
        vec![0, 1, 2, 3],
        SmpCosts::default(),
        |m| async move {
            let n = 4u32;
            for round in 0..4u8 {
                let dst = (m.rank + 1 + round as u32) % n;
                let _ = m.send(dst, &[m.rank as u8, round]).await;
                let _ = m.recv_timeout(2 * MS).await;
            }
        },
    );
    fam.install_faults(plan);

    let stats = sim.run();
    let mst = machine.stats();
    Fingerprint {
        outcome: format!("{:?}", stats.outcome),
        end_time: stats.end_time,
        events: stats.events,
        tasks: stats.tasks,
        machine: (
            mst.local_refs,
            mst.remote_refs,
            mst.block_transfers,
            mst.block_bytes,
            mst.atomics,
        ),
        msgs: (
            fam.messages_sent(),
            fam.messages_lost(),
            fam.messages_corrupted(),
        ),
        disk_ops: fs.disk(0).ops.get() + fs.disk(1).ops.get(),
        degraded_reads: fs.degraded_reads.get(),
    }
}

/// A workload wedged *by* the fault plan: 100% message loss from t=0, and
/// rank 1 waits on an unbounded `recv()` for a message that is always
/// dropped. The run must deadlock with the same stuck-task names every
/// time.
fn run_stuck(seed: u64) -> (String, Vec<String>) {
    let sim = Sim::with_seed(seed);
    let machine = Machine::new(&sim, MachineConfig::small(4));
    let os = Os::boot(&machine);
    let fam = Family::spawn(&os, 2, Topology::Complete, |m| async move {
        if m.rank == 0 {
            let _ = m.send(1, b"into the void").await;
        } else {
            let _ = m.recv().await; // the plan guarantees this never arrives
        }
    });
    let mut plan = FaultPlan::new(seed);
    plan.push(0, FaultKind::MessageLoss { pct: 100 });
    fam.install_faults(&plan);
    let stats = sim.run();
    match stats.outcome {
        bfly_sim::exec::RunOutcome::Completed => ("completed".into(), Vec::new()),
        bfly_sim::exec::RunOutcome::Deadlock { stuck } => ("deadlock".into(), stuck),
    }
}

/// Exercise the executor's slab reuse and timer wheel under heavy churn:
/// layers of short-lived tasks that sleep odd durations (so entries land
/// across wheel buckets and the overflow heap), cancel timers via
/// `timeout`, and spawn replacements into freed slots. Returns the full
/// run fingerprint for cross-run comparison.
fn run_churn(seed: u64, layers: u32) -> (u64, u64, u64) {
    let sim = Sim::with_seed(seed);
    for layer in 0..layers {
        let s = sim.clone();
        sim.spawn(async move {
            for i in 0..20u64 {
                let dur = (seed % 97) * 13 + i * 31 + layer as u64 * 7 + 1;
                if i % 3 == 0 {
                    // A timeout that usually loses: its deadline timer is
                    // dropped mid-flight, stressing lazy cancellation.
                    let _ = s.timeout(dur / 2 + 1, s.sleep(dur)).await;
                } else {
                    s.sleep(dur).await;
                }
                if i % 7 == 0 {
                    // Short-lived child: retires a slab slot for reuse.
                    let c = s.clone();
                    s.spawn(async move { c.sleep(3).await }).await;
                }
            }
        });
    }
    let stats = sim.run();
    assert_eq!(
        stats.outcome,
        bfly_sim::exec::RunOutcome::Completed,
        "churn workload must quiesce"
    );
    (stats.end_time, stats.events, stats.tasks)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Identical (seed, FaultPlan) pairs produce identical run outcomes
    /// and statistics across the whole stack.
    #[test]
    fn identical_seed_and_plan_give_identical_runs(seed in 0u64..1_000_000) {
        let plan = plan_for(seed);
        prop_assert_eq!(plan.clone(), plan_for(seed), "plan generation must be pure");
        let a = run_stack(seed, &plan);
        let b = run_stack(seed, &plan);
        prop_assert_eq!(a, b, "same (seed, plan) must be bit-identical");
    }

    /// The plan survives its text round trip and still reproduces the
    /// same run (so a plan logged by one experiment replays exactly).
    #[test]
    fn plan_text_round_trip_reproduces_the_run(seed in 0u64..1_000_000) {
        let plan = plan_for(seed);
        let back = FaultPlan::parse(&plan.to_text()).expect("round trip");
        prop_assert_eq!(run_stack(seed, &plan), run_stack(seed, &back));
    }

    /// When injected faults wedge the workload, the deadlock detector
    /// reports the same stuck-task names on every run.
    #[test]
    fn stuck_task_census_is_deterministic_under_faults(seed in 0u64..1_000_000) {
        let (outcome_a, stuck_a) = run_stuck(seed);
        let (outcome_b, stuck_b) = run_stuck(seed);
        prop_assert_eq!(&outcome_a, "deadlock", "100% loss must wedge the receiver");
        prop_assert_eq!(outcome_a, outcome_b);
        prop_assert!(
            stuck_a.iter().any(|n| n == "smp1"),
            "the starved receiver must be in the census: {:?}",
            stuck_a
        );
        prop_assert_eq!(stuck_a, stuck_b, "stuck-task names must be deterministic");
    }

    /// Slab-slot reuse, wheel/overflow timer placement, and lazy timer
    /// cancellation must not leak scheduling nondeterminism: two runs of
    /// the same churn workload agree on end time, events processed, and
    /// tasks spawned.
    #[test]
    fn executor_churn_is_deterministic(seed in 0u64..1_000_000, layers in 1u32..6) {
        prop_assert_eq!(run_churn(seed, layers), run_churn(seed, layers));
    }
}

/// Pinned Figure 5 quick-scale results. These exact simulated-ns values
/// were produced by the original heap-based engine; the fast-path engine
/// (timer wheel, slab tasks, direct poll, fused network delays) must keep
/// them bit-identical. If an intentional timing-model change moves them,
/// regenerate EXPERIMENTS.md and full_experiments.log in the same commit
/// that updates these constants.
#[test]
fn fig5_quick_simulated_ns_is_pinned() {
    let us = bfly_apps::gauss::gauss_us(16, 48, (0..128).collect(), 7);
    assert_eq!((us.time_ns, us.comm_ops), (121_789_000, 3_024));
    let smp = bfly_apps::gauss::gauss_smp(16, 48, 7);
    assert_eq!((smp.time_ns, smp.comm_ops), (143_460_400, 720));
}
