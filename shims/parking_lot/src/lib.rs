//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors a minimal shim exposing the subset of the parking_lot API the
//! Rochester collections use: `Mutex::{new, lock, try_lock}` and
//! `RwLock::{new, read, write}`, all infallible (a poisoned std lock is
//! recovered rather than propagated, which matches parking_lot's no-poison
//! semantics). Guards are the std guards, re-exported under parking_lot's
//! names so signatures like `parking_lot::MutexGuard<'_, T>` keep working.

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// Mutual exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let held = m.lock();
        assert!(m.try_lock().is_none());
        drop(held);
        assert_eq!(m.try_lock().map(|g| *g), Some(2));
    }

    #[test]
    fn rwlock_readers_share() {
        let l = RwLock::new(7u32);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
