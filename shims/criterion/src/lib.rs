//! Offline stand-in for the `criterion` crate.
//!
//! Implements the narrow API surface the bfly-bench harness uses —
//! `Criterion::default().sample_size(..).measurement_time(..).warm_up_time(..)`,
//! `bench_function`, `benchmark_group`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple mean/min/max
//! wall-clock measurement loop instead of criterion's statistical machinery.
//! Good enough to exercise the benches in CI and print comparable numbers;
//! not a substitute for real criterion when rigour matters.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Per-iteration timing harness handed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Run one named benchmark: warm up, pick an iteration count that fills
    /// the measurement window, take `sample_size` samples, report per-iter
    /// mean/min/max.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        // Warm-up: run single iterations until the warm-up window elapses,
        // measuring per-iteration cost as we go.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / warm_iters as u128;

        // Size each sample so all samples together roughly fill the window.
        let budget = self.measurement_time.as_nanos() / self.sample_size as u128;
        let iters = ((budget / per_iter.max(1)).max(1)).min(u64::MAX as u128) as u64;

        let mut total = Duration::ZERO;
        let mut best = Duration::MAX;
        let mut worst = Duration::ZERO;
        let mut done = 0u64;
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            let per = b.elapsed / iters as u32;
            total += b.elapsed;
            best = best.min(per);
            worst = worst.max(per);
            done += iters;
        }
        let mean = total.as_nanos() / done.max(1) as u128;
        println!(
            "{name:<40} time: [{} {} {}]  ({} samples x {} iters)",
            fmt_ns(best.as_nanos()),
            fmt_ns(mean),
            fmt_ns(worst.as_nanos()),
            self.sample_size,
            iters
        );
        self
    }

    /// Open a named group; benchmarks in it are prefixed `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
        }
    }

    /// Criterion calls this after all groups run; nothing to flush here.
    pub fn final_summary(&mut self) {}
}

/// Benchmark group: same driver, prefixed names.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        self.parent.bench_function(&full, f);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.parent.sample_size = n.max(1);
        self
    }

    pub fn finish(self) {}
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.4}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.4}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.4}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Build a benchmark-group function the way criterion does. Supports both
/// the `name/config/targets` form and the simple positional form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Entry point for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        let mut count = 0u64;
        c.bench_function("noop", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn groups_prefix_names() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        let mut g = c.benchmark_group("grp");
        g.bench_function("inner", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
