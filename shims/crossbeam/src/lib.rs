//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::scope` is used in this workspace (the collections test
//! suites and benches), and since Rust 1.63 the standard library provides
//! scoped threads natively. This shim adapts `std::thread::scope` to the
//! crossbeam calling convention:
//!
//! ```
//! crossbeam::scope(|s| {
//!     s.spawn(|_| { /* work */ });
//! })
//! .unwrap();
//! ```
//!
//! The one behavioural difference is panic propagation: real crossbeam
//! returns `Err` if a child panicked, while std's scope re-raises the panic
//! when the scope exits. Every call site immediately `.unwrap()`s, so both
//! turn a child panic into a test failure.

use std::thread;

/// Join handle for a scoped thread, mirroring `crossbeam::thread::ScopedJoinHandle`.
pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Wait for the thread to finish, returning its result (`Err` on panic).
    pub fn join(self) -> thread::Result<T> {
        self.inner.join()
    }
}

/// Scope wrapper mirroring `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. Crossbeam passes the scope back into the
    /// closure for nested spawns; the workspace never nests, so the shim
    /// passes a unit placeholder (call sites all use `|_|`).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&()) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&())),
        }
    }
}

/// Run `f` with a scope in which borrowed-data threads can be spawned; all
/// spawned threads are joined before `scope` returns.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

/// Crossbeam exposes scoped threads under `thread::scope` as well.
pub mod thread_mod {
    pub use super::{scope, Scope, ScopedJoinHandle};
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn threads_see_borrowed_data() {
        let counter = AtomicU32::new(0);
        super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn join_returns_value() {
        let got = super::scope(|s| {
            let h = s.spawn(|_| 41 + 1);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(got, 42);
    }
}
