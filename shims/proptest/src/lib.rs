//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so the workspace vendors a
//! minimal property-testing harness exposing the subset of the proptest API
//! the test suites use: the `proptest!` macro (with optional
//! `#![proptest_config(..)]`), `prop_assert!`/`prop_assert_eq!`, integer
//! range and tuple strategies, `any::<T>()`, `proptest::collection::vec`,
//! `proptest::option::of`, and `Strategy::prop_map`.
//!
//! Differences from real proptest, deliberately accepted:
//! - no shrinking: a failing case reports its inputs (via the case seed)
//!   but does not minimise them;
//! - inputs are drawn from a fixed deterministic stream seeded from the
//!   test's module path, name, and case index, so failures reproduce
//!   exactly on every run and on every machine;
//! - `any::<T>()` uses uniform bits rather than proptest's edge-case-biased
//!   distributions.

pub mod test_runner {
    use std::fmt;

    /// Deterministic SplitMix64 stream used to draw every generated value.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            Self { state: seed }
        }

        /// Seed for one test case: hash of (module, test name) mixed with
        /// the case index. Stable across runs and platforms.
        pub fn for_case(module: &str, name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in module.bytes().chain([b':']).chain(name.bytes()) {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self {
                state: h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn next_below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// Failure raised by `prop_assert!`-family macros inside a test body.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            Self {
                message: message.into(),
            }
        }

        /// Real proptest distinguishes `Fail` from `Reject`; the shim treats
        /// a rejection as an ordinary failure.
        pub fn reject(message: impl Into<String>) -> Self {
            Self::fail(message)
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Runner configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; the shim has no shrinking, so
            // a smaller default keeps `cargo test` latency reasonable while
            // still exploring the input space.
            Self { cases: 64 }
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map {
                source: self,
                map: f,
            }
        }

        /// Chain a dependent strategy: generate a value, build a second
        /// strategy from it, and generate from that (e.g. an index into
        /// a generated length).
        fn prop_flat_map<O, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            O: Strategy,
            F: Fn(Self::Value) -> O,
        {
            FlatMap {
                source: self,
                map: f,
            }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    /// Strategy produced by [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        source: S,
        map: F,
    }

    impl<S, O, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        O: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O::Value;

        fn generate(&self, rng: &mut TestRng) -> O::Value {
            (self.map)(self.source.generate(rng)).generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.next_below(span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as i128 - *self.start() as i128) as u64;
                    let off = if span == u64::MAX {
                        rng.next_u64()
                    } else {
                        rng.next_below(span + 1)
                    };
                    (*self.start() as i128 + off as i128) as $t
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategies {
        ($(($($S:ident . $idx:tt),+);)*) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($( self.$idx.generate(rng), )+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
        (A.0, B.1, C.2, D.3, E.4, F.5);
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<T: Arbitrary> Arbitrary for Option<T> {
        fn arbitrary(rng: &mut TestRng) -> Option<T> {
            // Yield None about a quarter of the time so both arms of
            // Option-consuming code get exercised.
            if rng.next_below(4) == 0 {
                None
            } else {
                Some(T::arbitrary(rng))
            }
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug)]
    pub struct AnyStrategy<T> {
        _marker: PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()`: generate arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: PhantomData,
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length bound for collection strategies (half-open).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.next_below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy returned by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `proptest::option::of(strategy)`: `None` sometimes, `Some` mostly.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests. Each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` (the attribute comes from the item's own meta list,
/// exactly as in real proptest) that runs `body` over `cases` generated
/// inputs. The body runs in a closure returning
/// `Result<(), TestCaseError>`, which is what the `prop_assert*` macros
/// early-return into.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    module_path!(),
                    stringify!($name),
                    __case,
                );
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )*
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__e) = __result {
                    panic!(
                        "proptest `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __cfg.cases,
                        __e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  both: {:?}",
                format!($($fmt)+),
                __l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn case_seeds_are_stable() {
        let mut a = TestRng::for_case("m", "t", 3);
        let mut b = TestRng::for_case("m", "t", 3);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::for_case("m", "t", 4);
        assert_ne!(
            TestRng::for_case("m", "t", 3).next_u64(),
            c.next_u64(),
            "different cases must draw different streams"
        );
    }

    #[test]
    fn range_strategies_stay_in_bounds() {
        let mut rng = TestRng::from_seed(11);
        for _ in 0..1_000 {
            let v = (5u32..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let w = (1u16..=256).generate(&mut rng);
            assert!((1..=256).contains(&w));
            let s = (-8i32..9).generate(&mut rng);
            assert!((-8..9).contains(&s));
        }
    }

    #[test]
    fn vec_and_option_and_map_compose() {
        let mut rng = TestRng::from_seed(23);
        let strat = crate::collection::vec(crate::option::of((0u64..10).prop_map(|x| x * 2)), 3..7);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            for x in v.into_iter().flatten() {
                assert!(x % 2 == 0 && x < 20);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: bindings, tuples, any, trailing comma.
        #[test]
        fn macro_wires_everything(
            (a, b) in (0u32..50, 1u32..50),
            flip in any::<bool>(),
            xs in crate::collection::vec(0u8..4, 1..10),
        ) {
            prop_assert!(a < 50 && b >= 1);
            prop_assert_eq!(xs.iter().filter(|&&x| x < 4).count(), xs.len());
            if flip {
                prop_assert_ne!(b, 0);
            }
        }
    }
}
