//! # butterfly — root package of the Butterfly reproduction workspace
//!
//! This crate hosts the workspace-level `examples/` and `tests/`; the
//! public API lives in [`butterfly_core`] and the per-subsystem crates.
//!
//! * `examples/quickstart.rs` — boot a machine, touch Chrysalis, run a
//!   Uniform System computation and a Linda tuple space.
//! * `examples/vision_pipeline.rs` — composed BIFF filters at 8 vs 64 procs.
//! * `examples/models_tour.rs` — one job under all five programming models.
//! * `examples/debug_deadlock.rs` — Figure 6: deadlock detection + Moviola.
//! * `examples/parallel_files.rs` — Bridge utilities, naive vs tools.
//!
//! See README.md, DESIGN.md, and EXPERIMENTS.md.

pub use butterfly_core as core;
pub use butterfly_core::prelude;
